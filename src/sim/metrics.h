// Per-trial measurement vector for the Monte Carlo experiment engine.
//
// A trial reports an ordered list of named scalars ("rounds", "deliveries",
// ...). Order is preserved so reports and JSON output are deterministic;
// lookups are linear (metric sets are tiny).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "radio/result.h"

namespace rn::sim {

/// Ordered (name, value) pairs produced by one trial.
class metrics {
 public:
  /// Sets `name` to `value`; appends if new, overwrites if already present.
  void set(std::string_view name, double value) {
    for (auto& [k, v] : items_) {
      if (k == name) {
        v = value;
        return;
      }
    }
    items_.emplace_back(std::string(name), value);
  }

  [[nodiscard]] bool has(std::string_view name) const {
    for (const auto& [k, v] : items_)
      if (k == name) return true;
    return false;
  }

  [[nodiscard]] double get(std::string_view name) const {
    for (const auto& [k, v] : items_)
      if (k == name) return v;
    RN_REQUIRE(false, "unknown metric: " + std::string(name));
    return 0;  // unreachable
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& items()
      const {
    return items_;
  }

 private:
  std::vector<std::pair<std::string, double>> items_;
};

/// The standard metric set of a broadcast run: completion, rounds, and the
/// `radio::network_stats`-derived counters every protocol runner reports.
/// "rounds" is only present for completed runs (so its aggregate is the mean
/// over completions); "rounds_executed" is always present.
inline metrics of_broadcast_result(const radio::broadcast_result& r) {
  metrics m;
  m.set("completed", r.completed ? 1.0 : 0.0);
  if (r.completed) m.set("rounds", static_cast<double>(r.rounds_to_complete));
  m.set("rounds_executed", static_cast<double>(r.rounds_executed));
  m.set("transmissions", static_cast<double>(r.transmissions));
  m.set("deliveries", static_cast<double>(r.deliveries));
  m.set("collisions", static_cast<double>(r.collisions_observed));
  return m;
}

}  // namespace rn::sim
