#include "sim/json.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace rn::sim {

void json_value::push_back(json_value v) {
  RN_REQUIRE(kind_ == kind::array, "push_back on non-array json value");
  arr_.push_back(std::move(v));
}

json_value& json_value::operator[](std::string_view key) {
  RN_REQUIRE(kind_ == kind::object, "operator[] on non-object json value");
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(std::string(key), json_value());
  return obj_.back().second;
}

void json_value::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_value::write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the usual stand-in
    os << "null";
    return;
  }
  // Integral values (round counts, seeds, ...) print without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void json_value::write(std::ostream& os, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (kind_) {
    case kind::null: os << "null"; break;
    case kind::boolean: os << (bool_ ? "true" : "false"); break;
    case kind::number: write_number(os, num_); break;
    case kind::string: write_escaped(os, str_); break;
    case kind::array: {
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        os << pad;
        arr_[i].write(os, indent, depth + 1);
        if (i + 1 < arr_.size()) os << ',';
        os << nl;
      }
      os << close_pad << ']';
      break;
    }
    case kind::object: {
      if (obj_.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        os << pad;
        write_escaped(os, obj_[i].first);
        os << colon;
        obj_[i].second.write(os, indent, depth + 1);
        if (i + 1 < obj_.size()) os << ',';
        os << nl;
      }
      os << close_pad << '}';
      break;
    }
  }
}

void json_value::dump(std::ostream& os, int indent) const {
  write(os, indent, 0);
}

std::string json_value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent, 0);
  return os.str();
}

}  // namespace rn::sim
