#include "sim/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace rn::sim {

void json_value::push_back(json_value v) {
  RN_REQUIRE(kind_ == kind::array, "push_back on non-array json value");
  arr_.push_back(std::move(v));
}

json_value& json_value::operator[](std::string_view key) {
  RN_REQUIRE(kind_ == kind::object, "operator[] on non-object json value");
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(std::string(key), json_value());
  return obj_.back().second;
}

void json_value::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_value::write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the usual stand-in
    os << "null";
    return;
  }
  // Integral values (round counts, seeds, ...) print without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    os << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void json_value::write(std::ostream& os, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (kind_) {
    case kind::null: os << "null"; break;
    case kind::boolean: os << (bool_ ? "true" : "false"); break;
    case kind::number: write_number(os, num_); break;
    case kind::string: write_escaped(os, str_); break;
    case kind::array: {
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        os << pad;
        arr_[i].write(os, indent, depth + 1);
        if (i + 1 < arr_.size()) os << ',';
        os << nl;
      }
      os << close_pad << ']';
      break;
    }
    case kind::object: {
      if (obj_.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        os << pad;
        write_escaped(os, obj_[i].first);
        os << colon;
        obj_[i].second.write(os, indent, depth + 1);
        if (i + 1 < obj_.size()) os << ',';
        os << nl;
      }
      os << close_pad << '}';
      break;
    }
  }
}

void json_value::dump(std::ostream& os, int indent) const {
  write(os, indent, 0);
}

std::string json_value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent, 0);
  return os.str();
}

const json_value* json_value::find(std::string_view key) const {
  if (kind_ != kind::object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

std::size_t json_value::size() const {
  if (kind_ == kind::array) return arr_.size();
  if (kind_ == kind::object) return obj_.size();
  return 0;
}

const json_value& json_value::at(std::size_t i) const {
  RN_REQUIRE(kind_ == kind::array && i < arr_.size(),
             "json at() out of range or on non-array");
  return arr_[i];
}

namespace {

/// Recursive-descent JSON reader over a string_view (no streaming: service
/// requests are one line each).
class json_reader {
 public:
  explicit json_reader(std::string_view text) : text_(text) {}

  json_value read_document() {
    json_value v = read_value();
    skip_ws();
    RN_REQUIRE(pos_ == text_.size(),
               "trailing bytes after JSON value at offset " +
                   std::to_string(pos_));
    return v;
  }

 private:
  // The reader recurses once per container level, so without a bound a
  // hostile document ("[[[[[...") overflows the stack and kills the whole
  // process — in rn_serve that turns one malformed request line into a
  // daemon crash instead of the structured bad-JSON error reply. Real
  // payloads (requests, results JSON, timing sidecars) nest 4-5 levels;
  // 256 is far above anything legitimate.
  static constexpr int kMaxDepth = 256;

  struct depth_guard {
    explicit depth_guard(json_reader& r) : r_(r) {
      if (++r_.depth_ > kMaxDepth)
        r_.fail("nesting deeper than " + std::to_string(kMaxDepth) +
                " levels");
    }
    ~depth_guard() { --r_.depth_; }
    depth_guard(const depth_guard&) = delete;
    depth_guard& operator=(const depth_guard&) = delete;
    json_reader& r_;
  };

  [[noreturn]] void fail(const std::string& what) const {
    throw contract_error("bad JSON at offset " + std::to_string(pos_) + ": " +
                         what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  json_value read_value() {
    const char c = peek();
    switch (c) {
      case '{': return read_object();
      case '[': return read_array();
      case '"': return json_value(read_string());
      case 't':
        if (consume_literal("true")) return json_value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return json_value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return json_value();
        fail("bad literal");
      default: return read_number();
    }
  }

  json_value read_object() {
    expect('{');
    const depth_guard guard(*this);
    json_value obj = json_value::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      const std::string key = read_string();
      expect(':');
      obj[key] = read_value();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  json_value read_array() {
    expect('[');
    const depth_guard guard(*this);
    json_value arr = json_value::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(read_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string read_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // paired up — the writer never emits them for this repo's ASCII
          // payloads, and lone surrogates round-trip as 3-byte sequences).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
    fail("unterminated string");
  }

  json_value read_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (num.empty() || end == nullptr || *end != '\0') {
      pos_ = start;
      fail("bad number");
    }
    return json_value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

json_value parse_json(std::string_view text) {
  return json_reader(text).read_document();
}

}  // namespace rn::sim
