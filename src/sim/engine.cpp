#include "sim/engine.h"

#include <atomic>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rn::sim {

namespace {
std::atomic<bool> g_fast_forward{true};
}  // namespace

bool use_fast_forward() { return g_fast_forward.load(std::memory_order_relaxed); }

void set_fast_forward(bool on) {
  g_fast_forward.store(on, std::memory_order_relaxed);
}

engine_snapshot engine_counters() {
  return radio::network::process_totals();
}

void set_intra_trial_threads(unsigned n) {
  radio::intra_trial_policy p = radio::get_intra_trial_policy();
  p.threads = n;
  radio::set_intra_trial_policy(p);
}

unsigned intra_trial_threads() {
  return radio::get_intra_trial_policy().threads;
}

shard_snapshot shard_counters() {
  return radio::network::process_shard_totals();
}

std::int64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<std::int64_t>(ru.ru_maxrss);  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace rn::sim
