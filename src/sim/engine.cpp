#include "sim/engine.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rn::sim {

namespace {
std::atomic<bool> g_fast_forward{true};

/// Monotone high-water mark across reset_peak_rss() windows.
std::atomic<std::int64_t> g_process_peak_rss_kb{0};

void raise_process_peak(std::int64_t kb) {
  std::int64_t seen = g_process_peak_rss_kb.load(std::memory_order_relaxed);
  while (kb > seen && !g_process_peak_rss_kb.compare_exchange_weak(
                          seen, kb, std::memory_order_relaxed)) {
  }
}

/// Reads a "Key:   <n> kB" line from /proc/self/status; -1 when absent
/// (non-Linux or /proc unavailable).
std::int64_t read_proc_status_kb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  const std::size_t key_len = std::strlen(key);
  std::int64_t kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      kb = std::strtoll(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return -1;
#endif
}

std::int64_t getrusage_peak_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::int64_t>(ru.ru_maxrss) / 1024;  // bytes on macOS
#else
  return static_cast<std::int64_t>(ru.ru_maxrss);  // kilobytes on Linux
#endif
#else
  return 0;
#endif
}
}  // namespace

bool use_fast_forward() { return g_fast_forward.load(std::memory_order_relaxed); }

void set_fast_forward(bool on) {
  g_fast_forward.store(on, std::memory_order_relaxed);
}

engine_snapshot engine_counters() {
  return radio::network::process_totals();
}

void set_intra_trial_threads(unsigned n) {
  radio::intra_trial_policy p = radio::get_intra_trial_policy();
  p.threads = n;
  radio::set_intra_trial_policy(p);
}

unsigned intra_trial_threads() {
  return radio::get_intra_trial_policy().threads;
}

shard_snapshot shard_counters() {
  return radio::network::process_shard_totals();
}

std::int64_t peak_rss_kb() {
  // Prefer VmHWM: unlike getrusage's ru_maxrss it observes clear_refs
  // resets, which is what makes per-run peaks possible at all.
  std::int64_t kb = read_proc_status_kb("VmHWM");
  if (kb < 0) kb = getrusage_peak_kb();
  raise_process_peak(kb);
  return kb;
}

bool reset_peak_rss() {
#if defined(__linux__)
  raise_process_peak(peak_rss_kb());  // never lose the pre-reset peak
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;  // 5 = reset the RSS high-water mark
  return (std::fclose(f) == 0) && ok && read_proc_status_kb("VmHWM") >= 0;
#else
  return false;
#endif
}

std::int64_t current_rss_kb() {
  const std::int64_t kb = read_proc_status_kb("VmRSS");
  return kb < 0 ? 0 : kb;
}

std::int64_t process_peak_rss_kb() {
  raise_process_peak(peak_rss_kb());
  return g_process_peak_rss_kb.load(std::memory_order_relaxed);
}

}  // namespace rn::sim
