#include "sim/engine.h"

#include <atomic>

namespace rn::sim {

namespace {
std::atomic<bool> g_fast_forward{true};
}  // namespace

bool use_fast_forward() { return g_fast_forward.load(std::memory_order_relaxed); }

void set_fast_forward(bool on) {
  g_fast_forward.store(on, std::memory_order_relaxed);
}

engine_snapshot engine_counters() {
  return radio::network::process_totals();
}

}  // namespace rn::sim
